/**
 * @file
 * SmallFn: a move-only `void()` callable with inline storage, built for
 * the event engine's hot path.
 *
 * `std::function` heap-allocates any capture larger than two words,
 * which in practice means every continuation a warp schedules (an
 * owner pointer plus a shared_ptr already exceeds the SBO budget).
 * SmallFn widens the inline buffer so every callback the simulator
 * actually creates is stored in place — scheduling an event never
 * touches the global allocator — and drops the copyability requirement
 * the event queue never needed. Callables too large for the buffer
 * still work; they fall back to a heap box, so the type stays total.
 *
 * The dispatch surface is two function pointers held in a static ops
 * table (invoke + relocate-or-destroy), one indirect call per fire:
 * cheaper than `std::function`'s manager protocol and friendlier to
 * slab-allocated event nodes, which relocate the callable at most once
 * (schedule() into the node) and never copy it.
 */

#ifndef MCMGPU_COMMON_SMALLFN_HH
#define MCMGPU_COMMON_SMALLFN_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace mcmgpu {

/** Move-only `void()` callable with inline small-buffer storage. */
class SmallFn
{
  public:
    /** Inline capture budget, bytes. Sized so the codebase's largest
     *  hot-path capture (an owner pointer + a shared_ptr) and a whole
     *  `std::function` both fit without spilling. */
    static constexpr size_t kInlineBytes = 32;

    SmallFn() = default;

    template <typename F>
        requires(!std::is_same_v<std::decay_t<F>, SmallFn> &&
                 std::is_invocable_r_v<void, std::decay_t<F> &>)
    SmallFn(F &&f) // NOLINT: implicit by design, mirrors std::function
    {
        using D = std::decay_t<F>;
        if constexpr (sizeof(D) <= kInlineBytes &&
                      alignof(D) <= alignof(std::max_align_t)) {
            ::new (static_cast<void *>(buf_)) D(std::forward<F>(f));
            ops_ = &inlineOps<D>;
        } else {
            *reinterpret_cast<D **>(buf_) = new D(std::forward<F>(f));
            ops_ = &heapOps<D>;
        }
    }

    SmallFn(SmallFn &&other) noexcept : ops_(other.ops_)
    {
        if (ops_) {
            ops_->relocate(buf_, other.buf_);
            other.ops_ = nullptr;
        }
    }

    SmallFn &
    operator=(SmallFn &&other) noexcept
    {
        if (this != &other) {
            reset();
            ops_ = other.ops_;
            if (ops_) {
                ops_->relocate(buf_, other.buf_);
                other.ops_ = nullptr;
            }
        }
        return *this;
    }

    SmallFn(const SmallFn &) = delete;
    SmallFn &operator=(const SmallFn &) = delete;

    ~SmallFn() { reset(); }

    /** Invoke the stored callable (must be non-empty). */
    void operator()() { ops_->invoke(buf_); }

    explicit operator bool() const { return ops_ != nullptr; }

    /** Destroy the stored callable, returning to the empty state. */
    void
    reset()
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

  private:
    struct Ops
    {
        void (*invoke)(void *buf);
        /** Move-construct dst from src, then destroy src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *buf);
    };

    template <typename D>
    static constexpr Ops inlineOps = {
        [](void *buf) { (*std::launder(reinterpret_cast<D *>(buf)))(); },
        [](void *dst, void *src) {
            D *s = std::launder(reinterpret_cast<D *>(src));
            ::new (dst) D(std::move(*s));
            s->~D();
        },
        [](void *buf) { std::launder(reinterpret_cast<D *>(buf))->~D(); },
    };

    template <typename D>
    static constexpr Ops heapOps = {
        [](void *buf) { (**reinterpret_cast<D **>(buf))(); },
        [](void *dst, void *src) {
            *reinterpret_cast<D **>(dst) = *reinterpret_cast<D **>(src);
        },
        [](void *buf) { delete *reinterpret_cast<D **>(buf); },
    };

    const Ops *ops_ = nullptr;
    alignas(std::max_align_t) std::byte buf_[kInlineBytes];
};

} // namespace mcmgpu

#endif // MCMGPU_COMMON_SMALLFN_HH
