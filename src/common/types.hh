/**
 * @file
 * Fundamental scalar types and identifiers used across the simulator.
 */

#ifndef MCMGPU_COMMON_TYPES_HH
#define MCMGPU_COMMON_TYPES_HH

#include <cstdint>

namespace mcmgpu {

/** Simulated time, measured in GPU core cycles (1 GHz baseline clock). */
using Cycle = uint64_t;

/** A byte address in the GPU global (virtual == physical size) space. */
using Addr = uint64_t;

/** Identifier of a GPU module (GPM) within a package, or GPU in a board. */
using ModuleId = uint32_t;

/** Identifier of an SM, global across the whole logical GPU. */
using SmId = uint32_t;

/** Identifier of a memory partition (one local DRAM stack per module). */
using PartitionId = uint32_t;

/** Linear index of a co-operative thread array within a kernel grid. */
using CtaId = uint32_t;

/** Linear index of a warp within a CTA. */
using WarpId = uint32_t;

/** Sentinel for "no module"/"invalid module". */
inline constexpr ModuleId kInvalidModule = ~0u;

/** Largest representable cycle; used as "never". */
inline constexpr Cycle kCycleMax = ~0ull;

} // namespace mcmgpu

#endif // MCMGPU_COMMON_TYPES_HH
