/**
 * @file
 * ASCII table / CSV emitters used by the benchmark harnesses to print
 * paper-style rows.
 */

#ifndef MCMGPU_COMMON_TABLE_HH
#define MCMGPU_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace mcmgpu {

/**
 * A simple left/right-aligned column table.
 *
 * Usage:
 * @code
 *   Table t({"Workload", "Speedup"});
 *   t.addRow({"Stream", "1.42"});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a data row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Insert a horizontal separator before the next row. */
    void addSeparator();

    /** Render with aligned columns (first column left, rest right). */
    void print(std::ostream &os) const;

    /** Render as comma-separated values. */
    void printCsv(std::ostream &os) const;

    size_t numRows() const { return rows_.size(); }

    /** Format a double with @p precision decimals. */
    static std::string fmt(double v, int precision = 3);

    /** Format as a percentage string, e.g. "+22.8%". */
    static std::string pct(double fraction, int precision = 1);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_; // empty row == separator
};

} // namespace mcmgpu

#endif // MCMGPU_COMMON_TABLE_HH
