/**
 * @file
 * A tiny statistics package: named scalar counters grouped per component.
 *
 * Components create a stats::Group and add() named counters; references
 * returned by add() are stable for the lifetime of the group (backed by a
 * deque), so hot paths can bump counters without any lookup.
 *
 * Threading contract (the parallel experiment runner depends on this):
 * there is NO global registry — every Group lives inside exactly one
 * component, every component inside exactly one GpuSystem, and each
 * concurrent simulation owns its GpuSystem outright. Distinct Group
 * instances are therefore freely usable from distinct threads with no
 * locking; a single Group/Scalar must never be shared across
 * concurrently running simulations. Groups are non-copyable (a copy
 * would silently decouple the Scalar references components hold), and
 * add() asserts it is called on the thread that constructed the group,
 * which is how cross-run counter sharing would first manifest.
 */

#ifndef MCMGPU_COMMON_STATS_HH
#define MCMGPU_COMMON_STATS_HH

#include <bit>
#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

namespace mcmgpu {
namespace stats {

/** A double-valued accumulating counter. */
class Scalar
{
  public:
    Scalar() = default;
    explicit Scalar(std::string name, std::string desc = "")
        : name_(std::move(name)), desc_(std::move(desc)) {}

    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator++() { value_ += 1.0; return *this; }
    void set(double v) { value_ = v; }
    void reset() { value_ = 0.0; }

    double value() const { return value_; }
    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    std::string name_;
    std::string desc_;
    double value_ = 0.0;
};

/**
 * A bucketed distribution counter (latencies, queue delays).
 *
 * Two bucketing schemes:
 *  - Log2:   bucket 0 holds the value 0, bucket i >= 1 holds
 *            [2^(i-1), 2^i - 1]. Constant-time via std::bit_width.
 *  - Linear: bucket i holds [i*width, (i+1)*width - 1].
 * Values past the top land in the last bucket (it is unbounded above).
 * record() is branch-cheap and allocation-free: the bucket array is
 * sized once at construction.
 */
class Histogram
{
  public:
    enum class Bucketing { Log2, Linear };

    /** Log2 histogram with @p num_buckets buckets (>= 2). */
    static Histogram
    makeLog2(std::string name, uint32_t num_buckets,
             std::string desc = "")
    {
        return Histogram(std::move(name), std::move(desc),
                         Bucketing::Log2, num_buckets, 1);
    }

    /** Linear histogram: @p num_buckets buckets of @p width each. */
    static Histogram
    makeLinear(std::string name, uint64_t width, uint32_t num_buckets,
               std::string desc = "")
    {
        return Histogram(std::move(name), std::move(desc),
                         Bucketing::Linear, num_buckets, width);
    }

    void
    record(uint64_t v, uint64_t n = 1)
    {
        buckets_[bucketOf(v)] += n;
        count_ += n;
        sum_ += v * n;
        if (count_ == n || v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }

    /** Bucket index @p v falls into. */
    uint32_t
    bucketOf(uint64_t v) const
    {
        uint64_t idx =
            bucketing_ == Bucketing::Log2
                ? static_cast<uint64_t>(std::bit_width(v))
                : v / width_;
        const uint64_t last = buckets_.size() - 1;
        return static_cast<uint32_t>(idx < last ? idx : last);
    }

    /** Smallest value belonging to bucket @p i. */
    uint64_t
    bucketLo(uint32_t i) const
    {
        if (bucketing_ == Bucketing::Log2)
            return i == 0 ? 0 : uint64_t(1) << (i - 1);
        return uint64_t(i) * width_;
    }

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }
    Bucketing bucketing() const { return bucketing_; }
    const std::vector<uint64_t> &buckets() const { return buckets_; }
    uint64_t count() const { return count_; }
    uint64_t sum() const { return sum_; }
    uint64_t minValue() const { return count_ ? min_ : 0; }
    uint64_t maxValue() const { return max_; }

    double
    mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }

    /**
     * Approximate p-quantile (p in [0, 1]) from the bucket counts.
     *
     * Exact cases: an empty histogram reports 0, and a distribution
     * whose min and max coincide (everything in one bucket, or a
     * single sample) reports that value exactly. Otherwise the rank
     * ceil(p * count) is located by a cumulative walk and linearly
     * interpolated inside its bucket, clamped to [minValue, maxValue]
     * so a sparse top bucket cannot report a value never observed.
     */
    double
    percentile(double p) const
    {
        if (count_ == 0)
            return 0.0;
        if (min_ == max_)
            return static_cast<double>(min_);
        if (p <= 0.0)
            return static_cast<double>(min_);
        if (p >= 1.0)
            return static_cast<double>(max_);

        // Rank of the sample we want, 1-based: smallest integer rank
        // such that at least p of the population lies at or below it.
        const double exact = p * static_cast<double>(count_);
        uint64_t rank = static_cast<uint64_t>(exact);
        if (static_cast<double>(rank) < exact)
            ++rank;
        if (rank == 0)
            rank = 1;

        uint64_t seen = 0;
        for (uint32_t i = 0; i < buckets_.size(); ++i) {
            const uint64_t n = buckets_[i];
            if (n == 0)
                continue;
            if (seen + n < rank) {
                seen += n;
                continue;
            }
            // Interpolate the rank's position within bucket i.
            const double lo = static_cast<double>(bucketLo(i));
            const double hi = i + 1 < buckets_.size()
                                  ? static_cast<double>(bucketLo(i + 1))
                                  : static_cast<double>(max_) + 1.0;
            const double frac =
                (static_cast<double>(rank - seen) - 0.5) /
                static_cast<double>(n);
            double v = lo + frac * (hi - lo);
            if (v < static_cast<double>(min_))
                v = static_cast<double>(min_);
            if (v > static_cast<double>(max_))
                v = static_cast<double>(max_);
            return v;
        }
        return static_cast<double>(max_);
    }

    /**
     * Fold another histogram's samples into this one. Requires the
     * same bucketing scheme and bucket count (the sweep aggregator
     * only merges histograms created from the same recipe); mismatch
     * merges by value through bucketLo, preserving count and sum.
     */
    void
    merge(const Histogram &other)
    {
        if (other.count_ == 0)
            return;
        if (bucketing_ == other.bucketing_ && width_ == other.width_ &&
            buckets_.size() == other.buckets_.size()) {
            for (size_t i = 0; i < buckets_.size(); ++i)
                buckets_[i] += other.buckets_[i];
            sum_ += other.sum_;
        } else {
            for (uint32_t i = 0; i < other.buckets_.size(); ++i) {
                const uint64_t n = other.buckets_[i];
                if (n)
                    buckets_[bucketOf(other.bucketLo(i))] += n;
            }
            sum_ += other.sum_;
        }
        count_ += other.count_;
        if (other.min_ < min_)
            min_ = other.min_;
        if (other.max_ > max_)
            max_ = other.max_;
    }

    void
    reset()
    {
        for (auto &b : buckets_)
            b = 0;
        count_ = sum_ = max_ = 0;
        min_ = ~uint64_t(0);
    }

  private:
    Histogram(std::string name, std::string desc, Bucketing b,
              uint32_t num_buckets, uint64_t width)
        : name_(std::move(name)),
          desc_(std::move(desc)),
          bucketing_(b),
          width_(width ? width : 1),
          buckets_(num_buckets >= 2 ? num_buckets : 2, 0)
    {
    }

    std::string name_;
    std::string desc_;
    Bucketing bucketing_;
    uint64_t width_;
    std::vector<uint64_t> buckets_;
    uint64_t count_ = 0;
    uint64_t sum_ = 0;
    uint64_t min_ = ~uint64_t(0);
    uint64_t max_ = 0;
};

/**
 * A group of named counters owned by one component ("sm12", "l2.part0").
 */
class Group
{
  public:
    Group() : name_("anon") {}
    explicit Group(std::string name) : name_(std::move(name)) {}

    // Copying would duplicate counters behind the backs of components
    // holding Scalar references; moving keeps them valid (deque nodes
    // travel) and adopts the destination thread as the new owner.
    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;
    Group(Group &&other) noexcept
        : name_(std::move(other.name_)),
          scalars_(std::move(other.scalars_)) {}
    Group &
    operator=(Group &&other) noexcept
    {
        name_ = std::move(other.name_);
        scalars_ = std::move(other.scalars_);
        owner_ = std::this_thread::get_id();
        return *this;
    }

    /**
     * Create-and-register a counter.
     * @return a reference that stays valid for the group's lifetime.
     */
    Scalar &add(const std::string &stat_name, const std::string &desc = "");

    /** Look up a counter by name; nullptr if absent. */
    const Scalar *find(const std::string &stat_name) const;

    /** Value of the named counter, or 0 if it does not exist. */
    double get(const std::string &stat_name) const;

    /** Zero every counter in the group. */
    void resetAll();

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }
    const std::deque<Scalar> &scalars() const { return scalars_; }

    /** Write "group.stat value  # desc" lines. */
    void dump(std::ostream &os) const;

  private:
    std::string name_;
    std::deque<Scalar> scalars_;
    /** Thread that owns registration; see the threading contract. */
    std::thread::id owner_ = std::this_thread::get_id();
};

} // namespace stats
} // namespace mcmgpu

#endif // MCMGPU_COMMON_STATS_HH
