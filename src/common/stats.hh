/**
 * @file
 * A tiny statistics package: named scalar counters grouped per component.
 *
 * Components create a stats::Group and add() named counters; references
 * returned by add() are stable for the lifetime of the group (backed by a
 * deque), so hot paths can bump counters without any lookup.
 *
 * Threading contract (the parallel experiment runner depends on this):
 * there is NO global registry — every Group lives inside exactly one
 * component, every component inside exactly one GpuSystem, and each
 * concurrent simulation owns its GpuSystem outright. Distinct Group
 * instances are therefore freely usable from distinct threads with no
 * locking; a single Group/Scalar must never be shared across
 * concurrently running simulations. Groups are non-copyable (a copy
 * would silently decouple the Scalar references components hold), and
 * add() asserts it is called on the thread that constructed the group,
 * which is how cross-run counter sharing would first manifest.
 */

#ifndef MCMGPU_COMMON_STATS_HH
#define MCMGPU_COMMON_STATS_HH

#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <thread>

namespace mcmgpu {
namespace stats {

/** A double-valued accumulating counter. */
class Scalar
{
  public:
    Scalar() = default;
    explicit Scalar(std::string name, std::string desc = "")
        : name_(std::move(name)), desc_(std::move(desc)) {}

    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator++() { value_ += 1.0; return *this; }
    void set(double v) { value_ = v; }
    void reset() { value_ = 0.0; }

    double value() const { return value_; }
    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    std::string name_;
    std::string desc_;
    double value_ = 0.0;
};

/**
 * A group of named counters owned by one component ("sm12", "l2.part0").
 */
class Group
{
  public:
    Group() : name_("anon") {}
    explicit Group(std::string name) : name_(std::move(name)) {}

    // Copying would duplicate counters behind the backs of components
    // holding Scalar references; moving keeps them valid (deque nodes
    // travel) and adopts the destination thread as the new owner.
    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;
    Group(Group &&other) noexcept
        : name_(std::move(other.name_)),
          scalars_(std::move(other.scalars_)) {}
    Group &
    operator=(Group &&other) noexcept
    {
        name_ = std::move(other.name_);
        scalars_ = std::move(other.scalars_);
        owner_ = std::this_thread::get_id();
        return *this;
    }

    /**
     * Create-and-register a counter.
     * @return a reference that stays valid for the group's lifetime.
     */
    Scalar &add(const std::string &stat_name, const std::string &desc = "");

    /** Look up a counter by name; nullptr if absent. */
    const Scalar *find(const std::string &stat_name) const;

    /** Value of the named counter, or 0 if it does not exist. */
    double get(const std::string &stat_name) const;

    /** Zero every counter in the group. */
    void resetAll();

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }
    const std::deque<Scalar> &scalars() const { return scalars_; }

    /** Write "group.stat value  # desc" lines. */
    void dump(std::ostream &os) const;

  private:
    std::string name_;
    std::deque<Scalar> scalars_;
    /** Thread that owns registration; see the threading contract. */
    std::thread::id owner_ = std::this_thread::get_id();
};

} // namespace stats
} // namespace mcmgpu

#endif // MCMGPU_COMMON_STATS_HH
