/**
 * @file
 * Summary statistics used for reporting: geometric / arithmetic means
 * and speedup helpers, matching how the paper aggregates workloads.
 */

#ifndef MCMGPU_COMMON_SUMMARY_HH
#define MCMGPU_COMMON_SUMMARY_HH

#include <span>
#include <vector>

namespace mcmgpu {

/** Geometric mean of strictly positive values; 0 for an empty span. */
double geomean(std::span<const double> values);

/** Arithmetic mean; 0 for an empty span. */
double mean(std::span<const double> values);

/** Element-wise ratio a[i]/b[i]; spans must have equal length. */
std::vector<double> ratios(std::span<const double> a,
                           std::span<const double> b);

/** Sorted copy, ascending (for s-curves). */
std::vector<double> sortedAscending(std::span<const double> values);

} // namespace mcmgpu

#endif // MCMGPU_COMMON_SUMMARY_HH
