/**
 * @file
 * Small deterministic PRNGs for procedural workload generation.
 *
 * Workloads must produce identical address streams across runs and across
 * machine configurations (otherwise speedups between configurations would
 * be contaminated by stream noise), so we use explicit, seedable engines
 * rather than std::random_device-backed generators.
 */

#ifndef MCMGPU_COMMON_RNG_HH
#define MCMGPU_COMMON_RNG_HH

#include <cstdint>

namespace mcmgpu {

/** SplitMix64: used to derive well-distributed seeds from small integers. */
constexpr uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Xoshiro-style 64-bit PRNG (xorshift128+ core). Fast, decent quality,
 * and fully deterministic given a seed.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 1)
    {
        s0_ = splitmix64(seed);
        s1_ = splitmix64(s0_ ^ 0xdeadbeefcafef00dull);
        if (s0_ == 0 && s1_ == 0)
            s1_ = 1;
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t x = s0_;
        const uint64_t y = s1_;
        s0_ = y;
        x ^= x << 23;
        s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1_ + y;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    uint64_t
    below(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi]. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli trial with probability p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    uint64_t s0_;
    uint64_t s1_;
};

} // namespace mcmgpu

#endif // MCMGPU_COMMON_RNG_HH
