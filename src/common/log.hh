/**
 * @file
 * Logging and error-reporting helpers in the gem5 tradition.
 *
 * panic()  - an internal simulator invariant was violated; prints the
 *            message with file:line, then throws std::logic_error.
 * fatal()  - the user asked for something impossible; prints the
 *            message with file:line, then throws std::runtime_error.
 * warn()   - functionality is approximated; results may be affected.
 * inform() - neutral status messages.
 *
 * Unlike gem5, panic() and fatal() throw instead of calling abort() /
 * exit(1): unit tests can assert on invariant violations and broken
 * configs (EXPECT_THROW and friends), and embedders get a catchable
 * error instead of a dead process. Left uncaught, the exception still
 * terminates the process — the message has already been printed to
 * stderr either way. Code after a panic()/fatal() call is unreachable.
 */

#ifndef MCMGPU_COMMON_LOG_HH
#define MCMGPU_COMMON_LOG_HH

#include <atomic>
#include <functional>
#include <sstream>
#include <string>

namespace mcmgpu {

namespace log_detail {

/** Assemble a message from stream-formattable parts. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace log_detail

/** Globally silence warn()/inform() (benchmarks produce clean tables). */
void setQuietLogging(bool quiet);
bool quietLogging();

/**
 * Where one finished warn()/inform() line goes (no trailing newline).
 * The default sink fprintf()s to stderr. The parallel experiment
 * runner installs a sink that funnels lines through exec::Progress's
 * single writer thread, so messages emitted concurrently from pool
 * workers never interleave mid-line on stderr.
 */
using LogSink = std::function<void(const std::string &line)>;

/** Install @p sink for warn()/inform(); pass nullptr to restore the
 *  default stderr sink. Thread-safe. */
void setLogSink(LogSink sink);

} // namespace mcmgpu

#define panic(...)                                                          \
    ::mcmgpu::log_detail::panicImpl(__FILE__, __LINE__,                     \
        ::mcmgpu::log_detail::concat(__VA_ARGS__))

#define fatal(...)                                                          \
    ::mcmgpu::log_detail::fatalImpl(__FILE__, __LINE__,                     \
        ::mcmgpu::log_detail::concat(__VA_ARGS__))

#define warn(...)                                                           \
    ::mcmgpu::log_detail::warnImpl(::mcmgpu::log_detail::concat(__VA_ARGS__))

/**
 * warn() that fires at most once per call site for the whole process:
 * the idiom for hot-path warnings that would otherwise repeat per
 * access/per cycle. The dedup flag is a relaxed atomic, so the
 * already-warned fast path costs one load and no locks.
 */
#define warn_once(...)                                                      \
    do {                                                                    \
        static std::atomic<bool> mcmgpu_warned_once_{false};                \
        if (!mcmgpu_warned_once_.load(std::memory_order_relaxed) &&         \
            !mcmgpu_warned_once_.exchange(true,                             \
                                          std::memory_order_relaxed)) {     \
            warn(__VA_ARGS__);                                              \
        }                                                                   \
    } while (0)

#define inform(...)                                                         \
    ::mcmgpu::log_detail::informImpl(                                       \
        ::mcmgpu::log_detail::concat(__VA_ARGS__))

/** panic() unless the given invariant condition holds. */
#define panic_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond) {                                                         \
            panic("panic condition (" #cond ") occurred: ", __VA_ARGS__);   \
        }                                                                   \
    } while (0)

/** fatal() unless the given user-facing condition holds. */
#define fatal_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond) {                                                         \
            fatal("fatal condition (" #cond ") occurred: ", __VA_ARGS__);   \
        }                                                                   \
    } while (0)

#endif // MCMGPU_COMMON_LOG_HH
