/**
 * @file
 * Conservative parallel-discrete-event engine: per-GPM simulation
 * domains synchronized at lookahead-bounded window barriers.
 *
 * A SimDomain owns one slab-calendar EventQueue plus a private RNG
 * stream; every component of one GPM (its SMs, L1.5, home L2/DRAM
 * partitions, and MemPipeline stages) schedules exclusively into its
 * home domain's queue. The SimEngine runs rounds: pick the global
 * minimum next-event time `next`, bound a window end
 * W = min(next + lookahead, limit + 1),
 * execute every domain's events with when < W in parallel, then — at
 * the barrier, single-threaded — let the registered sequencer hook
 * drain the cross-domain message outboxes in (emit cycle, source
 * domain, sequence) order. The lookahead is the compiled topology's
 * minimum inter-GPM route latency, so no request or response message
 * can ever target a cycle inside the window that produced it; messages
 * whose natural arrival lies in the past (remote-store acks, which
 * carry zero residual latency) are delivered at the target domain's
 * current time instead — a bounded, worker-count-independent slip
 * (docs/PDES.md).
 *
 * With one domain the engine is a pass-through to the serial
 * EventQueue — same code path, bit-identical behaviour (docs/PDES.md).
 */

#ifndef MCMGPU_COMMON_SIM_DOMAIN_HH
#define MCMGPU_COMMON_SIM_DOMAIN_HH

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/event_queue.hh"
#include "common/types.hh"

namespace mcmgpu {

/** One GPM's simulation context: an event queue plus an RNG stream. */
class SimDomain
{
  public:
    explicit SimDomain(uint32_t id);

    uint32_t id() const { return id_; }
    EventQueue &queue() { return eq_; }
    const EventQueue &queue() const { return eq_; }

    /** Next value of this domain's private RNG stream (seeded by the
     *  domain id, so streams are decorrelated and a domain's draws do
     *  not depend on other domains' activity). */
    uint64_t rngNext();

  private:
    uint32_t id_;
    EventQueue eq_;
    uint64_t rng_state_;
};

/**
 * The window-barrier coordinator. Construction yields a serial engine
 * with exactly one domain; activateParallel() splits it into N domains
 * executed by a persistent worker pool.
 */
class SimEngine
{
  public:
    using Outcome = EventQueue::Outcome;

    SimEngine();
    SimEngine(const SimEngine &) = delete;
    SimEngine &operator=(const SimEngine &) = delete;
    ~SimEngine();

    /**
     * Switch to parallel mode with @p num_domains domains driven by
     * @p threads workers (clamped to the domain count; the calling
     * thread is worker 0) and a conservative lookahead of @p lookahead
     * cycles. Must be called before any event is scheduled. Domain 0
     * is the one created at construction, so references to queue(0)
     * taken earlier stay valid.
     */
    void activateParallel(uint32_t num_domains, uint32_t threads,
                          Cycle lookahead);

    /**
     * Collapse back to the serial single-domain engine. Legal only
     * while no events have been scheduled — it exists so an owner that
     * activated parallel mode at construction can still honour a
     * later-arriving serial-only requirement (e.g. an event-trace or
     * flight-recorder attachment, docs/PDES.md). Queue 0 references
     * stay valid; workers are joined and the extra domains destroyed.
     */
    void deactivateParallel();

    bool parallel() const { return domains_.size() > 1; }
    uint32_t numDomains() const
    { return static_cast<uint32_t>(domains_.size()); }
    Cycle lookahead() const { return lookahead_; }

    SimDomain &domain(uint32_t d) { return *domains_[d]; }
    EventQueue &queue(uint32_t d) { return domains_[d]->queue(); }
    const EventQueue &queue(uint32_t d) const
    { return domains_[d]->queue(); }

    /** Simulated time: the serial queue's now(), or in parallel mode
     *  the maximum domain time — which at any barrier equals the time
     *  of the globally last executed event, i.e. the serial now(). */
    Cycle now() const;

    /** Events executed across all domains. The owner subtracts its own
     *  accounting corrections (e.g. message-delivery events that the
     *  serial engine would have folded into the emitting event). */
    uint64_t executed() const;

    /** Pending events across all domains. */
    size_t pending() const;

    /** Progress marks across all domains (see EventQueue). */
    uint64_t progressMarks() const;

    /**
     * Drain every domain until empty or until the next event lies past
     * @p limit. Serial mode delegates to EventQueue::run(). Parallel
     * mode runs barrier-synchronized windows; watchdog, wall deadline,
     * and sample boundaries are evaluated at barriers with the same
     * observable semantics as the serial loop.
     */
    Outcome run(Cycle limit = kCycleMax);

    // --- Parallel-mode hooks (no-ops in serial mode) -----------------------
    /** Single-threaded barrier hook: drain cross-domain outboxes. Runs
     *  after every window. */
    void setSequencerHook(std::function<void()> hook)
    { sequencer_hook_ = std::move(hook); }

    // --- Forwarded queue services ------------------------------------------
    /** Serial: arms queue 0's watchdog. Parallel: engine-level check at
     *  each barrier over summed progress/executed counters, raising the
     *  stall through queue 0 (where wait reporters register). */
    void setWatchdog(Cycle window_cycles,
                     std::function<std::string()> dump_machine_state);

    void setWallDeadline(double seconds);

    /** Passive sampling hook; parallel mode fires boundaries at
     *  barriers, matching the serial engine's boundary semantics. */
    void setSampleHook(Cycle period, std::function<void(Cycle)> hook);

    /** Diagnose an outside-the-loop wedge via queue 0 (reporters live
     *  there). */
    [[noreturn]] void diagnoseWedge(const std::string &why);

  private:
    Outcome runParallel(Cycle limit);

    /** Minimum (when, sched_when, domain) over all domains; returns
     *  false when every queue is empty. */
    bool globalNext(Cycle &when, Cycle &sched, uint32_t &dom) const;

    /** Fire every unfired sample boundary at or before @p when. */
    void fireBoundariesUpTo(Cycle when);

    void startWorkers();
    void stopWorkers();
    void workerLoop(uint32_t slot);
    /** Run one barrier round: every domain executes events < @p end. */
    void executeWindow(Cycle end);
    void runShare(uint32_t slot, Cycle end);

    std::vector<std::unique_ptr<SimDomain>> domains_;
    Cycle lookahead_ = 0;
    uint32_t threads_ = 1;

    std::function<void()> sequencer_hook_;

    // Parallel-mode watchdog / deadline / sampling state (mirrors the
    // EventQueue fields; serial mode leaves these untouched and uses
    // the queue's own).
    Cycle watchdog_window_ = 0;
    uint64_t watch_progress_ = 0;
    Cycle watch_cycle_ = 0;
    uint64_t watch_executed_ = 0;
    bool deadline_armed_ = false;
    std::chrono::steady_clock::time_point deadline_{};
    double wall_timeout_s_ = 0.0;
    Cycle sample_period_ = 0;
    Cycle next_sample_ = 0;
    std::function<void(Cycle)> sample_hook_;

    // Worker pool: round-numbered dispatch, atomic completion count.
    std::vector<std::thread> workers_;
    std::mutex pool_mutex_;
    std::condition_variable pool_start_;
    std::condition_variable pool_done_;
    uint64_t round_ = 0;
    Cycle round_end_ = 0;
    uint32_t round_remaining_ = 0;
    bool shutdown_ = false;
    std::vector<std::exception_ptr> worker_errors_;
};

} // namespace mcmgpu

#endif // MCMGPU_COMMON_SIM_DOMAIN_HH
