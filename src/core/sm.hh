/**
 * @file
 * Streaming Multiprocessor model.
 *
 * SMs are in-order processors exposing warp-level parallelism (section
 * 4): up to 64 resident warps share a single issue pipeline modelled as
 * a FIFO server, so memory latency of one warp overlaps with compute of
 * the others exactly as on real hardware. Each SM has a private L1
 * (write-through, no write-allocate, flushed at kernel boundaries under
 * software coherence).
 *
 * Memory completions arrive through a continuation (TxnDoneFn): under
 * the default chain model the continuation fires inside memAccess()
 * itself, reproducing the historical synchronous timing event for
 * event; under the staged model it fires at a later calendar event, and
 * a warp whose scoreboard slot is still in flight parks until the
 * completion wakes it — that is how finite remote MSHRs back-pressure
 * the SM.
 */

#ifndef MCMGPU_CORE_SM_HH
#define MCMGPU_CORE_SM_HH

#include <array>
#include <memory>
#include <unordered_map>

#include "common/config.hh"
#include "common/event_queue.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "gpu/kernel.hh"
#include "mem/cache.hh"
#include "mem/txn.hh"

namespace mcmgpu {

/**
 * Services an SM needs from the surrounding system. Implemented by
 * GpuSystem; kept abstract so SMs are unit-testable in isolation.
 */
class SmContext
{
  public:
    virtual ~SmContext() = default;

    virtual EventQueue &eventQueue() = 0;

    /**
     * The event queue module @p m schedules into. Defaults to the
     * single system queue; a domain-partitioned system (parallel
     * engine, docs/PDES.md) returns the module's home-domain queue.
     */
    virtual EventQueue &eventQueueFor(ModuleId) { return eventQueue(); }

    /**
     * Resolve an L1 miss (load) or a write-through store issued by a SM
     * on module @p src at time @p now. @p done fires exactly once with
     * the finished transaction and its completion cycle (loads: data
     * arrival; stores: home acceptance). Chain-model implementations
     * invoke it before returning; staged ones at a later event.
     */
    virtual void memAccess(ModuleId src, Addr addr, uint32_t bytes,
                           bool is_store, Cycle now, TxnDoneFn done) = 0;

    /** A CTA retired on @p sm; the scheduler may refill the slot. */
    virtual void ctaFinished(SmId sm) = 0;
};

/** One streaming multiprocessor. */
class Sm
{
  public:
    Sm(SmId id, ModuleId module, const GpuConfig &cfg, SmContext &ctx);

    SmId id() const { return id_; }
    ModuleId module() const { return module_; }

    /** Can a CTA of @p kernel be launched right now? */
    bool canAccept(const KernelDesc &kernel) const;

    /** Launch CTA @p cta of @p kernel; its warps start at @p now. */
    void launchCta(const KernelDesc &kernel, CtaId cta, Cycle now);

    uint32_t residentCtas() const { return resident_ctas_; }
    uint32_t residentWarps() const { return resident_warps_; }
    bool idle() const { return resident_warps_ == 0; }

    /** Software-coherence flush of the private L1. */
    void flushL1() { l1_.invalidateAll(); }

    Cache &l1() { return l1_; }
    const Cache &l1() const { return l1_; }

    uint64_t warpInstructions() const
    { return static_cast<uint64_t>(warp_insts_.value()); }

    stats::Group &statsGroup() { return stats_; }
    const stats::Group &statsGroup() const { return stats_; }

  private:
    /** Scoreboard-slot sentinel: the op owning the slot is still in
     *  flight (only ever observed under the staged memory model). */
    static constexpr Cycle kOpPending = kCycleMax;

    struct WarpRun
    {
        std::unique_ptr<WarpTrace> trace;
        CtaId cta;
        /** Completion times of the most recent memory ops, a circular
         *  buffer of max_outstanding_per_warp entries: the warp stalls
         *  only when it would exceed its scoreboard depth. */
        std::array<Cycle, 8> inflight{};
        uint32_t inflight_idx = 0;

        /** Parked-warp state (staged model): the memory op that could
         *  not issue because its scoreboard slot was still in flight,
         *  replayed when the completion wakes the warp. */
        WarpOp replay_op{};
        Cycle replay_issued = 0;
        uint32_t park_slot = 0;
        bool has_replay = false;
        /** Parked at retirement waiting for outstanding completions. */
        bool drain_parked = false;
    };

    /** Advance one warp by one operation; self-reschedules. Takes the
     *  run by value: each continuation moves ownership into the next
     *  scheduled event, so the dominant event type pays no shared_ptr
     *  refcount traffic after CTA launch. */
    void stepWarp(std::shared_ptr<WarpRun> warp);

    /** Memory completion: install the L1 line (loads), publish the
     *  completion cycle into the scoreboard slot, and wake the warp if
     *  it parked on this slot (issue or drain). */
    void memDone(const std::shared_ptr<WarpRun> &warp, uint32_t slot,
                 const MemTxn &txn, Cycle done);

    void warpRetired(CtaId cta);

    SmId id_;
    ModuleId module_;
    SmContext &ctx_;
    Cache l1_;
    uint32_t max_warps_;
    uint32_t max_ctas_;
    uint32_t issue_width_;
    uint32_t max_outstanding_ = 4;

    /** Next cycle the shared issue pipeline is free. */
    Cycle issue_free_ = 0;

    uint32_t resident_ctas_ = 0;
    uint32_t resident_warps_ = 0;
    std::unordered_map<CtaId, uint32_t> warps_left_; //!< per resident CTA

    stats::Group stats_;
    stats::Scalar &warp_insts_;
    stats::Scalar &mem_ops_;
    stats::Scalar &store_ops_;
    stats::Scalar &ctas_run_;
    stats::Scalar &mem_stall_cycles_;
};

} // namespace mcmgpu

#endif // MCMGPU_CORE_SM_HH
