#include "core/sm.hh"

#include <utility>

#include "common/log.hh"

namespace mcmgpu {

Sm::Sm(SmId id, ModuleId module, const GpuConfig &cfg, SmContext &ctx)
    : id_(id),
      module_(module),
      ctx_(ctx),
      l1_(cfg.l1, "sm" + std::to_string(id) + ".l1", /*write_back=*/false),
      max_warps_(cfg.max_warps_per_sm),
      max_ctas_(cfg.max_ctas_per_sm),
      issue_width_(cfg.sm_issue_width),
      stats_("sm" + std::to_string(id)),
      warp_insts_(stats_.add("warp_insts", "warp instructions executed")),
      mem_ops_(stats_.add("mem_ops", "memory operations issued")),
      store_ops_(stats_.add("store_ops", "store operations issued")),
      ctas_run_(stats_.add("ctas_run", "CTAs executed to completion")),
      mem_stall_cycles_(stats_.add("mem_stall_cycles",
                                   "cycles warps waited on a full "
                                   "memory scoreboard"))
{
    panic_if(issue_width_ == 0, "SM issue width must be positive");
    max_outstanding_ = cfg.max_outstanding_per_warp;
    if (max_outstanding_ == 0)
        max_outstanding_ = 1;
    fatal_if(max_outstanding_ > 8,
             "max_outstanding_per_warp is capped at 8 (scoreboard "
             "ring-buffer size)");
}

bool
Sm::canAccept(const KernelDesc &kernel) const
{
    return resident_ctas_ < max_ctas_ &&
           resident_warps_ + kernel.warps_per_cta <= max_warps_;
}

void
Sm::launchCta(const KernelDesc &kernel, CtaId cta, Cycle now)
{
    panic_if(!canAccept(kernel), "sm", id_, ": CTA launched without a slot");
    panic_if(!kernel.make_trace, "kernel '", kernel.name,
             "' has no trace factory");

    ++resident_ctas_;
    resident_warps_ += kernel.warps_per_cta;
    warps_left_[cta] = kernel.warps_per_cta;

    EventQueue &eq = ctx_.eventQueueFor(module_);
    for (WarpId w = 0; w < kernel.warps_per_cta; ++w) {
        auto run = std::make_shared<WarpRun>();
        run->trace = kernel.make_trace(cta, w);
        run->cta = cta;
        eq.schedule(now, [this, run = std::move(run)]() mutable {
            stepWarp(std::move(run));
        });
    }
}

void
Sm::stepWarp(std::shared_ptr<WarpRun> warp)
{
    EventQueue &eq = ctx_.eventQueueFor(module_);
    const Cycle now = eq.now();

    WarpOp op;
    Cycle issued;
    if (warp->has_replay) {
        // Resuming from a park: the instruction already went through
        // fetch/issue accounting, only its memory access replays. The
        // cycles between the original issue and the wake-up are the
        // back-pressure stall.
        warp->has_replay = false;
        op = warp->replay_op;
        issued = std::max(warp->replay_issued, now);
        if (issued > warp->replay_issued)
            mem_stall_cycles_ += issued - warp->replay_issued;
    } else {
        if (!warp->trace->next(op)) {
            // Drain the scoreboard before retiring: outstanding loads
            // and posted stores must land inside the kernel's lifetime.
            Cycle drain = now;
            bool pending = false;
            for (Cycle c : warp->inflight) {
                if (c == kOpPending)
                    pending = true;
                else
                    drain = std::max(drain, c);
            }
            if (pending) {
                // Staged model: some completion times are not known
                // yet. Park; memDone() re-runs this drain check.
                warp->drain_parked = true;
            } else if (drain > now) {
                warp->inflight.fill(0);
                eq.schedule(drain, [this, w = std::move(warp)]() mutable {
                    stepWarp(std::move(w));
                });
            } else {
                warpRetired(warp->cta);
            }
            return;
        }
        ++warp_insts_;
        // Forward progress for the simulation watchdog: as long as some
        // warp keeps executing instructions, the machine is not stalled.
        eq.noteProgress();

        // The warp's compute segment occupies the shared issue pipeline;
        // a trailing memory instruction takes one extra issue slot.
        Cycle occupancy =
            (op.compute_cycles + issue_width_ - 1) / issue_width_ +
            (op.has_mem ? 1 : 0);
        if (occupancy == 0)
            occupancy = 1;

        Cycle start = std::max(now, issue_free_);
        issued = start + occupancy;
        issue_free_ = issued;
    }

    Cycle ready = issued;
    if (op.has_mem) {
        // Scoreboarded in-order execution: the warp keeps issuing past
        // outstanding memory ops and stalls only when it would exceed
        // its scoreboard depth — i.e. it waits for the op issued
        // max_outstanding_per_warp instructions ago.
        const uint32_t slot = warp->inflight_idx % max_outstanding_;
        const Cycle prev = warp->inflight[slot];
        if (prev == kOpPending) {
            // That op has not even completed yet (staged model): park
            // until its completion wakes us, then replay this access.
            warp->replay_op = op;
            warp->replay_issued = issued;
            warp->park_slot = slot;
            warp->has_replay = true;
            return;
        }
        ++mem_ops_;
        warp->inflight_idx++;
        ready = std::max(issued, prev);
        if (ready > issued)
            mem_stall_cycles_ += ready - issued;
        warp->inflight[slot] = kOpPending;

        if (op.is_store) {
            ++store_ops_;
            // Write-through, no write-allocate: update the L1 copy if
            // present, then post the store downstream; the scoreboard
            // slot tracks its acceptance (finite store-buffer model).
            l1_.lookup(op.addr, true, issued);
            ctx_.memAccess(module_, op.addr, op.bytes, true, issued,
                           [this, warp, slot](const MemTxn &txn,
                                              Cycle done) {
                               memDone(warp, slot, txn, done);
                           });
        } else {
            CacheLookup res = l1_.lookup(op.addr, false, issued);
            switch (res.outcome) {
              case CacheOutcome::Hit:
                warp->inflight[slot] = issued + l1_.hitLatency();
                break;
              case CacheOutcome::HitPending:
                warp->inflight[slot] = std::max(res.ready, issued);
                break;
              case CacheOutcome::Miss:
                ctx_.memAccess(module_, op.addr, l1_.lineBytes(), false,
                               issued,
                               [this, warp, slot](const MemTxn &txn,
                                                  Cycle done) {
                                   memDone(warp, slot, txn, done);
                               });
                break;
            }
        }
    }

    eq.schedule(ready, [this, w = std::move(warp)]() mutable {
        stepWarp(std::move(w));
    });
}

void
Sm::memDone(const std::shared_ptr<WarpRun> &warp, uint32_t slot,
            const MemTxn &txn, Cycle done)
{
    // Loads install the returned line; the fill is timed at arrival so
    // accesses racing it observe the in-flight latency.
    if (!txn.is_store)
        l1_.fill(txn.addr, false, done);
    warp->inflight[slot] = done;

    // Wake a warp parked on this completion (staged model only; under
    // chain this continuation runs inside memAccess and no park exists).
    if ((warp->has_replay && warp->park_slot == slot) ||
        warp->drain_parked) {
        warp->drain_parked = false;
        EventQueue &eq = ctx_.eventQueueFor(module_);
        const Cycle wake = std::max(done, eq.now());
        eq.schedule(wake, [this, w = warp]() mutable {
            stepWarp(std::move(w));
        });
    }
}

void
Sm::warpRetired(CtaId cta)
{
    auto it = warps_left_.find(cta);
    panic_if(it == warps_left_.end(), "sm", id_,
             ": retired warp of unknown CTA ", cta);
    panic_if(resident_warps_ == 0, "sm", id_, ": warp underflow");
    --resident_warps_;
    if (--it->second == 0) {
        warps_left_.erase(it);
        panic_if(resident_ctas_ == 0, "sm", id_, ": CTA underflow");
        --resident_ctas_;
        ++ctas_run_;
        ctx_.ctaFinished(id_);
    }
}

} // namespace mcmgpu
