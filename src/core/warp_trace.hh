/**
 * @file
 * The instruction-stream abstraction executed by SMs.
 *
 * A WarpTrace procedurally yields warp-granular operations: a segment of
 * compute cycles optionally followed by one coalesced memory access.
 * Workloads implement traces; the SM model consumes them. Traces must be
 * deterministic so every machine configuration executes the identical
 * stream (speedups then measure the machine, not the workload).
 */

#ifndef MCMGPU_CORE_WARP_TRACE_HH
#define MCMGPU_CORE_WARP_TRACE_HH

#include <memory>

#include "common/types.hh"

namespace mcmgpu {

/** One warp-level operation. */
struct WarpOp
{
    /** Cycles of SM issue pipeline the op's compute portion occupies. */
    uint32_t compute_cycles = 0;

    bool has_mem = false;  //!< op ends with a memory access
    bool is_store = false; //!< the access is a store (posted)
    Addr addr = 0;         //!< byte address of the coalesced access
    uint32_t bytes = 128;  //!< payload size (<= one cache line)
};

/** Lazily generated stream of warp operations. */
class WarpTrace
{
  public:
    virtual ~WarpTrace() = default;

    /**
     * Produce the next operation.
     * @return false when the warp has retired its last instruction.
     */
    virtual bool next(WarpOp &op) = 0;
};

} // namespace mcmgpu

#endif // MCMGPU_CORE_WARP_TRACE_HH
